/**
 * @file
 * Reproduces paper Figure 11: the maximum tolerable register file
 * access latency — the largest relative main-register-file latency
 * that costs a design at most 5% IPC — per workload for BL, RFC,
 * LTRF, and LTRF+. Also prints the section 6.3 variants with 1% and
 * 10% allowable loss.
 *
 * The metric isolates latency sensitivity: the loss is measured
 * against the same design at 1x latency (the paper notes the metric
 * "is different for each design, depending on the latency tolerance
 * of the design"), so a design with a small fixed overhead but a
 * flat latency curve scores high, as LTRF does. The sweep tops out
 * at 7x like the paper's; designs that never lose 5% report 7x.
 *
 * The latency multiplier is swept at 0.5x granularity from 1x to 7x
 * (capacity held constant) and the threshold crossing is linearly
 * interpolated. Pass --fast for a 1x-step sweep and --jobs N to
 * bound the worker count.
 *
 * The whole (workload x design x multiplier) grid runs once on the
 * ExperimentRunner thread pool; the three loss thresholds are then
 * evaluated against the same grid, where the old serial harness
 * re-simulated the sweep per threshold.
 */

#include <cstring>

#include "bench_util.hh"
#include "harness/runner.hh"

using namespace ltrf;
using namespace ltrf::bench;

namespace
{

std::vector<double>
sweepLatencies(bool fast)
{
    std::vector<double> mults;
    for (double m = 1.0; m <= 7.001; m += fast ? 1.0 : 0.5)
        mults.push_back(m);
    return mults;
}

/** IPC of @p d on @p w at latency @p mult, from the sweep grid. */
double
ipcAt(const harness::ResultSet &rs, const Workload &w, RfDesign d,
      double mult)
{
    return rs.find(w.name, d, 0, mult).result.ipc;
}

/**
 * Largest multiplier with IPC >= threshold x baseline, linearly
 * interpolated between sweep points; clamped to the sweep range.
 */
double
maxTolerable(const harness::ResultSet &rs, const Workload &w, RfDesign d,
             const std::vector<double> &mults, double threshold)
{
    double prev_m = mults.front();
    double prev_ipc = ipcAt(rs, w, d, prev_m);
    // Self-normalized: the design's own 1x-latency IPC is the
    // reference the 5% loss is measured against.
    double base = prev_ipc * threshold;
    double last_ok = mults.front();
    for (size_t i = 1; i < mults.size(); i++) {
        double m = mults[i];
        double ipc = ipcAt(rs, w, d, m);
        if (ipc >= base) {
            last_ok = m;
        } else {
            // Interpolate the crossing between prev_m and m.
            double frac = (prev_ipc - base) /
                          std::max(1e-9, prev_ipc - ipc);
            return prev_m + frac * (m - prev_m);
        }
        prev_m = m;
        prev_ipc = ipc;
    }
    return last_ok;
}

} // namespace

int
main(int argc, char **argv)
{
    bool fast = false;
    for (int i = 1; i < argc; i++)
        if (std::strcmp(argv[i], "--fast") == 0)
            fast = true;
    std::vector<double> mults = sweepLatencies(fast);

    const std::vector<RfDesign> designs = {RfDesign::BL, RfDesign::RFC,
                                           RfDesign::LTRF,
                                           RfDesign::LTRF_PLUS};

    harness::SweepSpec spec = suiteSpec();
    spec.designs = designs;
    spec.latency_mults = mults;

    harness::ExperimentRunner runner(jobsFromArgs(argc, argv));
    harness::ResultSet rs = runner.run(harness::expandSweep(spec));

    std::printf("Figure 11: maximum tolerable register file access "
                "latency (5%% IPC loss)\n\n");
    std::vector<std::string> names;
    for (RfDesign d : designs)
        names.push_back(rfDesignName(d));
    printHeader(names);

    std::vector<std::vector<double>> cols(designs.size());
    for (const Workload &w : WorkloadSuite::all()) {
        std::vector<double> row;
        for (size_t i = 0; i < designs.size(); i++) {
            double m = maxTolerable(rs, w, designs[i], mults, 0.95);
            row.push_back(m);
            cols[i].push_back(m);
        }
        printRow(w.name + (w.register_sensitive ? " [S]" : " [I]"), row);
    }
    std::vector<double> means;
    for (auto &c : cols)
        means.push_back(mean(c));
    printRow("MEAN", means);

    // Section 6.3: the 1% and 10% loss variants, means only.
    for (double thr : {0.99, 0.90}) {
        std::vector<double> ms;
        for (size_t i = 0; i < designs.size(); i++) {
            std::vector<double> v;
            for (const Workload &w : WorkloadSuite::all())
                v.push_back(maxTolerable(rs, w, designs[i], mults, thr));
            ms.push_back(mean(v));
        }
        std::printf("\nMean with %2.0f%% allowable loss:", (1 - thr) * 100);
        for (size_t i = 0; i < designs.size(); i++)
            std::printf("  %s %.1fx", rfDesignName(designs[i]), ms[i]);
        std::printf("\n");
    }

    std::printf("\nPaper reference (5%% loss): BL n/a, RFC 2.1x, LTRF "
                "5.3x, LTRF+ 6.2x. With 1%%: 1.4/2.8/3.5x; with 10%%: "
                "2.9/6.5/7.9x (RFC/LTRF/LTRF+).\n");
    return 0;
}
