/**
 * @file
 * Reproduces paper Figure 2: on-chip memory capacity (L1+shared, L2,
 * register file) across four GPU generations, from published
 * specifications encoded in tech/rf_config.cc.
 */

#include <cstdio>

#include "tech/rf_config.hh"

using namespace ltrf;

int
main()
{
    std::printf("Figure 2: on-chip memory capacity by GPU generation "
                "(MB)\n\n");
    std::printf("%-10s %6s %12s %8s %14s %8s %10s\n", "GPU", "Year",
                "L1D+Shared", "L2", "RegisterFile", "Total", "RF share");
    for (const GenerationMemory &g : generationMemoryTable()) {
        std::printf("%-10s %6d %12.2f %8.2f %14.2f %8.2f %9.0f%%\n",
                    g.name, g.year, g.l1_shared_mb, g.l2_mb, g.rf_mb,
                    g.total(), g.rfFraction() * 100.0);
    }
    std::printf("\nPaper reference: the register file grows every "
                "generation and reaches 14.3MB\n(>60%% of on-chip "
                "storage) on Pascal.\n");
    return 0;
}
